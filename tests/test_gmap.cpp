#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.hpp"
#include "gmap/gmap.hpp"
#include "graph/cartesian_graph.hpp"

namespace gridmap {
namespace {

TEST(Gmap, PartSizesAreExact) {
  const CartesianGrid grid({8, 6});
  const CsrGraph g = build_cartesian_graph(grid, Stencil::nearest_neighbor(2));
  const GeneralGraphMapper mapper(GmapOptions::fast());
  const std::vector<int> sizes = {10, 14, 24};
  const std::vector<int> part = mapper.map_graph(g, sizes);
  std::vector<int> counts(3, 0);
  for (const int p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 3);
    ++counts[static_cast<std::size_t>(p)];
  }
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 14);
  EXPECT_EQ(counts[2], 24);
}

TEST(Gmap, RejectsMismatchedSizes) {
  const CartesianGrid grid({4, 4});
  const CsrGraph g = build_cartesian_graph(grid, Stencil::nearest_neighbor(2));
  const GeneralGraphMapper mapper(GmapOptions::fast());
  EXPECT_THROW(mapper.map_graph(g, {8, 9}), std::invalid_argument);
}

TEST(Gmap, RemappingRespectsAllocation) {
  const CartesianGrid grid({8, 6});
  const NodeAllocation alloc({12, 12, 24});
  const Stencil s = Stencil::nearest_neighbor(2);
  const GeneralGraphMapper mapper(GmapOptions::fast());
  const Remapping m = mapper.remap(grid, s, alloc);
  const std::vector<NodeId> node_of_cell = m.node_of_cell(alloc);
  std::vector<int> counts(3, 0);
  for (const NodeId n : node_of_cell) ++counts[static_cast<std::size_t>(n)];
  EXPECT_EQ(counts, (std::vector<int>{12, 12, 24}));
}

TEST(Gmap, QualityBeatsBlockedClearly) {
  const CartesianGrid grid({20, 12});
  const NodeAllocation alloc = NodeAllocation::homogeneous(10, 24);
  const Stencil s = Stencil::nearest_neighbor(2);
  const GeneralGraphMapper mapper(GmapOptions::fast());
  const MappingCost gm = evaluate_mapping(grid, s, mapper.remap(grid, s, alloc), alloc);
  const MappingCost blocked =
      evaluate_mapping(grid, s, Remapping::identity(grid), alloc);
  EXPECT_LT(gm.jsum, blocked.jsum);
}

TEST(Gmap, DeterministicPerSeed) {
  const CartesianGrid grid({10, 8});
  const NodeAllocation alloc = NodeAllocation::homogeneous(4, 20);
  const Stencil s = Stencil::nearest_neighbor(2);
  GmapOptions o = GmapOptions::fast();
  o.seed = 99;
  const GeneralGraphMapper a(o);
  const GeneralGraphMapper b(o);
  EXPECT_EQ(a.remap(grid, s, alloc), b.remap(grid, s, alloc));
}

TEST(Gmap, MoreRestartsNeverHurt) {
  const CartesianGrid grid({12, 10});
  const NodeAllocation alloc = NodeAllocation::homogeneous(6, 20);
  const Stencil s = Stencil::nearest_neighbor(2);
  GmapOptions weak = GmapOptions::fast();
  GmapOptions strong = GmapOptions::fast();
  strong.restarts = 6;
  const MappingCost a = evaluate_mapping(
      grid, s, GeneralGraphMapper(weak).remap(grid, s, alloc), alloc);
  const MappingCost b = evaluate_mapping(
      grid, s, GeneralGraphMapper(strong).remap(grid, s, alloc), alloc);
  EXPECT_LE(b.jsum, a.jsum);
}

TEST(Gmap, HandlesDisconnectedGraph) {
  // Component stencil: columns are disconnected from each other.
  const CartesianGrid grid({6, 4});
  const NodeAllocation alloc = NodeAllocation::homogeneous(4, 6);
  const Stencil s = Stencil::component(2);
  const GeneralGraphMapper mapper(GmapOptions::fast());
  const MappingCost cost = evaluate_mapping(grid, s, mapper.remap(grid, s, alloc), alloc);
  // Each node can own exactly one column: optimal cut 0.
  EXPECT_EQ(cost.jsum, 0);
}

}  // namespace
}  // namespace gridmap
