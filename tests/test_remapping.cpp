#include <gtest/gtest.h>

#include <numeric>

#include "core/remapping.hpp"

namespace gridmap {
namespace {

TEST(Remapping, IdentityMapsRankToSameCell) {
  const CartesianGrid g({3, 4});
  const Remapping m = Remapping::identity(g);
  for (Rank r = 0; r < g.size(); ++r) {
    EXPECT_EQ(m.cell_of(r), static_cast<Cell>(r));
    EXPECT_EQ(m.rank_of(static_cast<Cell>(r)), r);
  }
}

TEST(Remapping, FromCellsBuildsInverse) {
  const CartesianGrid g({2, 2});
  const Remapping m = Remapping::from_cells(g, {3, 2, 1, 0});
  EXPECT_EQ(m.cell_of(0), 3);
  EXPECT_EQ(m.rank_of(3), 0);
  EXPECT_EQ(m.cell_of(2), 1);
  EXPECT_EQ(m.rank_of(1), 2);
}

TEST(Remapping, FromCellsRejectsDuplicates) {
  const CartesianGrid g({2, 2});
  EXPECT_THROW(Remapping::from_cells(g, {0, 0, 1, 2}), std::invalid_argument);
}

TEST(Remapping, FromCellsRejectsOutOfRange) {
  const CartesianGrid g({2, 2});
  EXPECT_THROW(Remapping::from_cells(g, {0, 1, 2, 4}), std::invalid_argument);
  EXPECT_THROW(Remapping::from_cells(g, {0, 1, 2}), std::invalid_argument);
}

TEST(Remapping, NodeOfCellIdentityIsBlockedOwnership) {
  const CartesianGrid g({2, 4});
  const NodeAllocation alloc = NodeAllocation::homogeneous(2, 4);
  const std::vector<NodeId> nodes = Remapping::identity(g).node_of_cell(alloc);
  const std::vector<NodeId> expected = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(nodes, expected);
}

TEST(Remapping, NodeOfCellFollowsPermutation) {
  const CartesianGrid g({2, 2});
  const NodeAllocation alloc = NodeAllocation::homogeneous(2, 2);
  // Ranks 0,1 (node 0) at cells 3 and 1; ranks 2,3 (node 1) at cells 0 and 2.
  const Remapping m = Remapping::from_cells(g, {3, 1, 0, 2});
  const std::vector<NodeId> nodes = m.node_of_cell(alloc);
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 0, 1, 0}));
}

TEST(Remapping, NodeOfCellHeterogeneous) {
  const CartesianGrid g({5});
  const NodeAllocation alloc({2, 3});
  const Remapping m = Remapping::from_cells(g, {4, 3, 2, 1, 0});
  // Ranks 0,1 on node 0 occupy cells 4,3; ranks 2,3,4 on node 1 occupy 2,1,0.
  EXPECT_EQ(m.node_of_cell(alloc), (std::vector<NodeId>{1, 1, 1, 0, 0}));
}

TEST(Remapping, NodeOfCellRejectsMismatchedAllocation) {
  const CartesianGrid g({2, 2});
  const NodeAllocation alloc = NodeAllocation::homogeneous(3, 2);
  EXPECT_THROW(Remapping::identity(g).node_of_cell(alloc), std::invalid_argument);
}

}  // namespace
}  // namespace gridmap
