// Telemetry subsystem tests: histogram bucket boundaries and quantile
// accuracy against a sorted reference, snapshot merging, TSan-clean
// concurrent recording, the registry's golden exposition format, the trace
// ring's bounds and Chrome trace-event export, and the engine/service
// metric surface (request quantiles by outcome, queue wait, per-backend
// remap histograms, per-shard queue depth) — all socket-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/blocked.hpp"
#include "engine/portfolio.hpp"
#include "engine/service.hpp"
#include "engine/sharded_service.hpp"
#include "engine/telemetry.hpp"
#include "obs/histogram.hpp"
#include "obs/options.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace gridmap {
namespace {

using engine::EngineOptions;
using engine::EngineTelemetry;
using engine::Instance;
using engine::MapperRegistry;
using engine::MappingService;
using engine::PortfolioEngine;
using engine::ServiceOptions;
using engine::ShardedService;
using obs::HistogramSnapshot;
using obs::Labels;
using obs::LatencyHistogram;
using obs::MetricsSnapshot;
using obs::ObsOptions;
using obs::SeriesSnapshot;
using obs::TelemetryRegistry;
using obs::TraceRecorder;
using obs::TraceSpan;

// ---------------------------------------------------------------- histogram --

TEST(Histogram, SmallValuesHaveExactBuckets) {
  // The first kSubBuckets values get one bucket per nanosecond: the bucket's
  // upper bound IS the value, so sub-32ns latencies suffer zero quantization.
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(LatencyHistogram::bucket_upper_nanos(index), v) << "value " << v;
  }
}

TEST(Histogram, BucketBoundsGiveBoundedRelativeError) {
  // Above the exact range every value must land in a bucket whose upper
  // bound overestimates it by at most 1/kSubBuckets (the log-bucket design
  // contract the quantile accuracy rests on).
  const std::vector<std::uint64_t> probes = {
      32,   33,   63,        64,        65,         1000,       1023,      1024,
      4097, 12345, 1u << 20, (1u << 20) + 1, 999999937u, 1ull << 38, (1ull << 39) - 1};
  for (const std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    const std::uint64_t upper = LatencyHistogram::bucket_upper_nanos(index);
    EXPECT_GE(upper, v) << "value " << v;
    EXPECT_LE(static_cast<double>(upper),
              static_cast<double>(v) *
                  (1.0 + 1.0 / static_cast<double>(LatencyHistogram::kSubBuckets)))
        << "value " << v;
  }
}

TEST(Histogram, BucketIndexIsMonotoneAndInRange) {
  std::size_t last = 0;
  for (std::uint64_t v = 0; v < (1u << 14); ++v) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    EXPECT_GE(index, last);
    EXPECT_LT(index, LatencyHistogram::kBuckets);
    last = index;
  }
  // Beyond the representable range everything clamps into the last bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull), LatencyHistogram::kBuckets - 1);
}

TEST(Histogram, QuantilesMatchASortedReferenceWithinBucketError) {
  // 10k deterministic pseudo-random latencies spanning ns to ms; every
  // quantile the exposition reports must bracket the nearest-rank reference
  // from the fully sorted sample within the 1/32 relative bucket error.
  LatencyHistogram hist;
  std::vector<std::uint64_t> reference;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t value = (state >> 33) % 3000000;  // [0, 3ms)
    reference.push_back(value);
    hist.record(value);
  }
  std::sort(reference.begin(), reference.end());
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, reference.size());

  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(reference.size())));
    const std::uint64_t expected = reference[rank == 0 ? 0 : rank - 1];
    const double got = snap.quantile_nanos(q);
    EXPECT_GE(got, static_cast<double>(expected)) << "q=" << q;
    EXPECT_LE(got, static_cast<double>(expected) * (1.0 + 1.0 / 32.0) + 1.0) << "q=" << q;
  }
  // q=1 is the exact observed maximum, not a bucket bound.
  EXPECT_EQ(snap.quantile_nanos(1.0), static_cast<double>(reference.back()));
  EXPECT_EQ(snap.max_nanos, reference.back());
}

TEST(Histogram, EmptySnapshotReportsZeroes) {
  const HistogramSnapshot snap = LatencyHistogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile_nanos(0.5), 0.0);
  EXPECT_EQ(snap.quantile_nanos(1.0), 0.0);
  EXPECT_EQ(snap.mean_nanos(), 0.0);
}

TEST(Histogram, RecordSecondsClampsNegativeAndHugeValues) {
  LatencyHistogram hist;
  hist.record_seconds(-1.0);                       // clamps to 0
  hist.record_seconds(1e9);                        // clamps into the top bucket
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_GE(snap.max_nanos, (1ull << 39) - 1);
}

TEST(Histogram, MergedSnapshotEqualsThePooledRecording) {
  // Merging per-shard snapshots must be exact: identical to one histogram
  // that saw every recording (same buckets, counts, sums, max — hence the
  // same quantiles). This is the property ShardedService::metrics_text
  // relies on when pooling per-shard latency distributions.
  LatencyHistogram a, b, pooled;
  std::uint64_t state = 42;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t value = (state >> 33) % 1000000;
    ((i % 2 == 0) ? a : b).record(value);
    pooled.record(value);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot expected = pooled.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum_nanos, expected.sum_nanos);
  EXPECT_EQ(merged.max_nanos, expected.max_nanos);
  EXPECT_EQ(merged.buckets, expected.buckets);
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.quantile_nanos(q), expected.quantile_nanos(q));
  }
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  // 8 threads hammer one histogram while a reader snapshots mid-flight;
  // the final snapshot must account for every record. Run under TSan in CI.
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (int i = 0; i < 50; ++i) (void)hist.snapshot();  // concurrent readers are legal
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// ----------------------------------------------------------------- registry --

TEST(Registry, ExpositionGoldenFormat) {
  // Integral instruments pin the exact exposition text: # TYPE lines,
  // _total counter suffix, label rendering, and (name, labels) sort order.
  // (Histogram sample values are floats and format-tested separately.)
  TelemetryRegistry registry;
  registry.counter("gridmap_requests", {{"event", "submitted"}}).inc(5);
  registry.counter("gridmap_requests", {{"event", "completed"}}).inc(4);
  registry.gauge("gridmap_queue_depth", {{"shard", "0"}}).set(3);
  (void)registry.histogram("gridmap_request_seconds", {{"outcome", "race"}});

  std::ostringstream out;
  obs::write_exposition(out, registry.snapshot());
  EXPECT_EQ(out.str(),
            "# TYPE gridmap_queue_depth gauge\n"
            "gridmap_queue_depth{shard=\"0\"} 3\n"
            "# TYPE gridmap_request_seconds summary\n"
            "gridmap_request_seconds{outcome=\"race\",quantile=\"0.5\"} 0\n"
            "gridmap_request_seconds{outcome=\"race\",quantile=\"0.9\"} 0\n"
            "gridmap_request_seconds{outcome=\"race\",quantile=\"0.99\"} 0\n"
            "gridmap_request_seconds{outcome=\"race\",quantile=\"1\"} 0\n"
            "gridmap_request_seconds_count{outcome=\"race\"} 0\n"
            "gridmap_request_seconds_sum{outcome=\"race\"} 0\n"
            "# TYPE gridmap_requests_total counter\n"
            "gridmap_requests_total{event=\"completed\"} 4\n"
            "gridmap_requests_total{event=\"submitted\"} 5\n");
}

TEST(Registry, SameSeriesReturnsTheSameInstrument) {
  TelemetryRegistry registry;
  obs::Counter& a = registry.counter("hits", {{"k", "v"}});
  a.inc(2);
  // Label order must not matter for identity; a second lookup binds the
  // same underlying counter.
  EXPECT_EQ(&registry.counter("hits", {{"k", "v"}}), &a);
  EXPECT_EQ(registry.counter("hits", {{"k", "v"}}).value(), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, RejectsBadNamesAndKindMismatches) {
  TelemetryRegistry registry;
  EXPECT_THROW((void)registry.counter("bad name"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("1leading"), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("ok", {{"bad key", "v"}}), std::invalid_argument);
  EXPECT_THROW((void)registry.counter("ok", {{"k", "a"}, {"k", "b"}}),
               std::invalid_argument);
  (void)registry.counter("taken");
  EXPECT_THROW((void)registry.gauge("taken"), std::invalid_argument);
}

TEST(Registry, LabelValuesAreEscapedInExposition) {
  TelemetryRegistry registry;
  registry.gauge("g", {{"k", "quo\"te\\back\nline"}}).set(1);
  std::ostringstream out;
  obs::write_exposition(out, registry.snapshot());
  EXPECT_EQ(out.str(), "# TYPE g gauge\ng{k=\"quo\\\"te\\\\back\\nline\"} 1\n");
}

TEST(Registry, MergeSeriesAddsScalarsAndPoolsHistograms) {
  TelemetryRegistry shard0, shard1;
  shard0.counter("reqs").inc(3);
  shard1.counter("reqs").inc(4);
  shard0.histogram("lat").record(100);
  shard1.histogram("lat").record(200);
  shard1.counter("only_shard1").inc(1);

  MetricsSnapshot merged = shard0.snapshot();
  obs::merge_series(merged, shard1.snapshot());
  ASSERT_EQ(merged.size(), 3u);
  for (const SeriesSnapshot& s : merged) {
    if (s.name == "reqs") EXPECT_EQ(s.value, 7.0);
    if (s.name == "lat") {
      EXPECT_EQ(s.histogram.count, 2u);
      EXPECT_EQ(s.histogram.max_nanos, 200u);
    }
    if (s.name == "only_shard1") EXPECT_EQ(s.value, 1.0);
  }
}

TEST(Registry, AddLabelSkipsSeriesThatAlreadyCarryTheKey) {
  TelemetryRegistry registry;
  registry.gauge("a").set(1);
  registry.gauge("b", {{"shard", "7"}}).set(2);
  MetricsSnapshot snapshot = registry.snapshot();
  obs::add_label(snapshot, "shard", "0");
  for (const SeriesSnapshot& s : snapshot) {
    ASSERT_EQ(s.labels.size(), 1u);
    EXPECT_EQ(s.labels[0].first, "shard");
    EXPECT_EQ(s.labels[0].second, s.name == "b" ? "7" : "0");
  }
}

// -------------------------------------------------------------------- trace --

TEST(Trace, RingKeepsTheMostRecentSpansAndCountsDrops) {
  TraceRecorder recorder(4);
  ASSERT_TRUE(recorder.enabled());
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.record({"span" + std::to_string(i), "test", 1, i * 100, 50});
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const std::vector<TraceSpan> spans = recorder.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first of the surviving tail: span6..span9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].name, "span" + std::to_string(6 + i));
  }
}

TEST(Trace, ZeroCapacityDisablesRecording) {
  TraceRecorder recorder(0);
  EXPECT_FALSE(recorder.enabled());
  recorder.record({"ignored", "test", 1, 0, 1});
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.spans().empty());
}

TEST(Trace, TracksAreUniqueAndOneBased) {
  TraceRecorder recorder(8);
  const std::uint64_t a = recorder.new_track();
  const std::uint64_t b = recorder.new_track();
  EXPECT_GE(a, 1u);  // 0 is reserved for "no track"
  EXPECT_EQ(b, a + 1);
}

TEST(Trace, ChromeExportIsWellFormedJson) {
  TraceRecorder recorder(8);
  recorder.record({"map", "engine", 1, 1500, 2000});
  recorder.record({"quo\"te", "backend", 2, 2000, 100});
  std::ostringstream out;
  recorder.write_chrome_trace(out, /*pid=*/3, "shard 3");
  const std::string json = out.str();

  // Structure: a traceEvents array with one process_name metadata event and
  // one "X" complete event per span, µs timestamps with ns decimals.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find(R"({"name":"process_name","ph":"M","pid":3,"args":{"name":"shard 3"}})"),
            std::string::npos);
  EXPECT_NE(json.find(R"({"name":"map","cat":"engine","ph":"X","pid":3,"tid":1,"ts":1.500,"dur":2.000})"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"quo\"te")"), std::string::npos);  // escaping
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
  // Balanced braces/brackets outside strings — cheap structural JSON check.
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// -------------------------------------------------- engine telemetry surface --

MapperRegistry tiny_registry() {
  MapperRegistry registry;
  registry.add("blocked", [] { return std::make_unique<BlockedMapper>(); });
  return registry;
}

Instance tiny_instance(int a = 6, int b = 8) {
  return {CartesianGrid({a, b}), Stencil::nearest_neighbor(2),
          NodeAllocation::homogeneous(a, b)};
}

TEST(EngineTelemetry, ObsOptionsOffMeansNoTelemetryAtAll) {
  EngineOptions options;
  options.threads = 1;
  options.obs.metrics = false;
  options.obs.trace = false;
  PortfolioEngine engine(tiny_registry(), options);
  EXPECT_EQ(engine.telemetry(), nullptr);  // nothing allocated, nothing recorded
  const Instance inst = tiny_instance();
  EXPECT_NE(engine.map(inst.grid, inst.stencil, inst.alloc), nullptr);
}

TEST(EngineTelemetry, MetricsOnBindsEveryInstrumentAndRecordsStages) {
  EngineOptions options;
  options.threads = 1;
  PortfolioEngine engine(tiny_registry(), options);  // obs.metrics defaults on
  ASSERT_NE(engine.telemetry(), nullptr);
  EngineTelemetry& telemetry = *engine.telemetry();
  EXPECT_TRUE(telemetry.metrics());
  EXPECT_FALSE(telemetry.tracing());
  ASSERT_EQ(telemetry.backend_remap.size(), 1u);

  const Instance inst = tiny_instance();
  (void)engine.map(inst.grid, inst.stencil, inst.alloc);
  (void)engine.map(inst.grid, inst.stencil, inst.alloc);  // cache hit

  EXPECT_EQ(telemetry.stage_race->count(), 1u);         // one uncached race
  EXPECT_EQ(telemetry.backend_remap[0]->count(), 1u);   // one backend run
  EXPECT_EQ(telemetry.backend_eval[0]->count(), 1u);
  EXPECT_GE(telemetry.plan_cache_probe->count(), 2u);   // probed on both calls
  EXPECT_GE(telemetry.stage_cache_probe->count(), 2u);
}

TEST(EngineTelemetry, TracingNestsStageSpansInsideTheRequestSpan) {
  EngineOptions options;
  options.threads = 1;
  options.obs.trace = true;
  options.obs.trace_capacity = 64;
  PortfolioEngine engine(tiny_registry(), options);
  const Instance inst = tiny_instance();
  (void)engine.map(inst.grid, inst.stencil, inst.alloc);

  ASSERT_NE(engine.telemetry(), nullptr);
  const std::vector<TraceSpan> spans = engine.telemetry()->trace().spans();
  ASSERT_FALSE(spans.empty());
  const auto find = [&spans](const std::string& name) -> const TraceSpan* {
    for (const TraceSpan& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const TraceSpan* request = find("map");
  const TraceSpan* race = find("race");
  const TraceSpan* backend = find("backend:blocked");
  ASSERT_NE(request, nullptr);
  ASSERT_NE(race, nullptr);
  ASSERT_NE(backend, nullptr);
  // Stage spans share the request's track and nest within its interval
  // (the property that makes the Perfetto view a per-request flame chart).
  EXPECT_EQ(race->track, request->track);
  EXPECT_GE(race->start_nanos, request->start_nanos);
  EXPECT_LE(race->start_nanos + race->duration_nanos,
            request->start_nanos + request->duration_nanos);
  // Backend runs get their own track so concurrent backends don't interleave.
  EXPECT_NE(backend->track, request->track);
}

TEST(ServiceMetrics, ExposesRequestOutcomesQueueWaitAndCounters) {
  ServiceOptions service_options;
  service_options.workers = 1;
  EngineOptions engine_options;
  engine_options.threads = 1;
  MappingService service(tiny_registry(), engine_options, service_options);
  const Instance a = tiny_instance(6, 8);
  (void)service.map_async(a.grid, a.stencil, a.alloc).get();   // race
  (void)service.map_async(a.grid, a.stencil, a.alloc).get();   // cache hit

  std::ostringstream out;
  obs::write_exposition(out, service.metrics());
  const std::string text = out.str();
  // Request latency quantiles by outcome, the queue-wait histogram, the
  // per-backend remap histogram, and the synthesized service counters must
  // all be present — the acceptance surface of the `metrics` verb.
  EXPECT_NE(text.find("gridmap_request_seconds{outcome=\"race\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("gridmap_request_seconds_count{outcome=\"race\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gridmap_request_seconds_count{outcome=\"hit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gridmap_queue_wait_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("gridmap_backend_remap_seconds{backend=\"blocked\""),
            std::string::npos);
  EXPECT_NE(text.find("gridmap_service_requests_total{event=\"submitted\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gridmap_service_requests_total{event=\"cache_hit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gridmap_queue_depth "), std::string::npos);
  EXPECT_NE(text.find("gridmap_stage_seconds_count{stage=\"race\"} 1"), std::string::npos);
}

TEST(ServiceMetrics, MetricsOffStillExposesServiceCounters) {
  ServiceOptions service_options;
  service_options.workers = 1;
  EngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.obs.metrics = false;
  MappingService service(tiny_registry(), engine_options, service_options);
  const Instance a = tiny_instance();
  (void)service.map_async(a.grid, a.stencil, a.alloc).get();

  std::ostringstream out;
  obs::write_exposition(out, service.metrics());
  const std::string text = out.str();
  EXPECT_NE(text.find("gridmap_service_requests_total{event=\"completed\"} 1"),
            std::string::npos);
  // No histograms without metrics — only the synthesized counter/gauge set.
  EXPECT_EQ(text.find("gridmap_request_seconds"), std::string::npos);
}

TEST(ShardedMetrics, CountersStayPerShardWhileHistogramsPool) {
  // The cross-shard exposition contract: scalar series carry shard="i" (a
  // per-shard gauge like queue depth must never be summed or averaged
  // away), histogram series pool into one fleet-wide distribution.
  ServiceOptions service_options;
  service_options.workers = 1;
  EngineOptions engine_options;
  engine_options.threads = 1;
  ShardedService service(tiny_registry(), engine_options, service_options, 3);
  // Distinct signatures so at least two shards see traffic.
  for (int k = 0; k < 6; ++k) {
    const Instance inst = tiny_instance(4 + k, 6);
    (void)service.map_async(inst.grid, inst.stencil, inst.alloc).get();
  }

  const std::string text = service.metrics_text();
  for (const std::string shard : {"0", "1", "2"}) {
    EXPECT_NE(text.find("gridmap_queue_depth{shard=\"" + shard + "\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("gridmap_service_requests_total{event=\"submitted\",shard=\"" + shard +
                  "\"}"),
        std::string::npos);
  }
  EXPECT_NE(text.find("gridmap_shards 3"), std::string::npos);
  // Pooled histograms: exactly one request-latency series per outcome, no
  // shard label on it, counting all 6 races.
  EXPECT_NE(text.find("gridmap_request_seconds_count{outcome=\"race\"} 6"),
            std::string::npos);
  EXPECT_EQ(text.find("gridmap_request_seconds{outcome=\"race\",quantile=\"0.5\",shard"),
            std::string::npos);
}

TEST(ShardedMetrics, TraceExportMergesShardsAsSeparateProcesses) {
  ServiceOptions service_options;
  service_options.workers = 1;
  EngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.obs.trace = true;
  engine_options.obs.trace_capacity = 128;
  ShardedService service(tiny_registry(), engine_options, service_options, 2);
  ASSERT_TRUE(service.tracing());
  for (int k = 0; k < 4; ++k) {
    const Instance inst = tiny_instance(4 + k, 6);
    (void)service.map_async(inst.grid, inst.stencil, inst.alloc).get();
  }

  std::ostringstream out;
  service.write_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // One process per shard (pid = shard index + 1) with a name annotation.
  EXPECT_NE(json.find(R"("args":{"name":"shard 0"})"), std::string::npos);
  EXPECT_NE(json.find(R"("args":{"name":"shard 1"})"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
}

}  // namespace
}  // namespace gridmap
