#include <gtest/gtest.h>

#include "core/kd_tree.hpp"
#include "core/metrics.hpp"

namespace gridmap {
namespace {

TEST(KdTree, SplitIndexAvoidsCommunicatingDimension) {
  const KdTreeMapper mapper;
  // f = [6, 2] for the hops stencil: dim 1 scores 12/2 = 6 > 16/6 = 2.67.
  const std::vector<int> f = Stencil::nearest_neighbor_with_hops(2).crossing_counts();
  EXPECT_EQ(mapper.find_split_index({16, 12}, f), 1);
}

TEST(KdTree, ZeroCrossingDimensionWinsAlways) {
  const KdTreeMapper mapper;
  const std::vector<int> f = Stencil::component(2).crossing_counts();  // [2, 0]
  EXPECT_EQ(mapper.find_split_index({100, 2}, f), 1);
}

TEST(KdTree, SizeOneDimensionsAreSkipped) {
  const KdTreeMapper mapper;
  const std::vector<int> f = {2, 0};
  EXPECT_EQ(mapper.find_split_index({100, 1}, f), 0);
  EXPECT_EQ(mapper.find_split_index({1, 1}, f), -1);
}

TEST(KdTree, UnweightedAblationPicksLargestDimension) {
  KdTreeMapper::Options o;
  o.weighted = false;
  const KdTreeMapper mapper(o);
  const std::vector<int> f = Stencil::nearest_neighbor_with_hops(2).crossing_counts();
  EXPECT_EQ(mapper.find_split_index({16, 12}, f), 0);
}

TEST(KdTree, ProducesValidPermutation) {
  const CartesianGrid g({7, 9});  // odd sizes exercise floor/ceil halving
  const NodeAllocation alloc = NodeAllocation::homogeneous(7, 9);
  const Stencil s = Stencil::nearest_neighbor(2);
  const KdTreeMapper mapper;
  const Remapping m = mapper.remap(g, s, alloc);
  EXPECT_EQ(m.size(), 63);
}

TEST(KdTree, ObliviousToNodeSize) {
  // The k-d tree recursion never reads the allocation, so the permutation is
  // identical for different node groupings of the same total.
  const CartesianGrid g({8, 6});
  const Stencil s = Stencil::nearest_neighbor(2);
  const KdTreeMapper mapper;
  const Remapping a = mapper.remap(g, s, NodeAllocation::homogeneous(4, 12));
  const Remapping b = mapper.remap(g, s, NodeAllocation::homogeneous(6, 8));
  EXPECT_EQ(a.cell_of_rank(), b.cell_of_rank());
}

TEST(KdTree, FindsOptimalComponentStencilMapping) {
  // Paper Section VI-D: on the component stencil the k-d tree finds the
  // optimal mapping with 2 outgoing edges per node.
  const CartesianGrid g({50, 48});
  const NodeAllocation alloc = NodeAllocation::homogeneous(50, 48);
  const Stencil s = Stencil::component(2);
  const KdTreeMapper mapper;
  const MappingCost cost = evaluate_mapping(g, s, mapper.remap(g, s, alloc), alloc);
  EXPECT_EQ(cost.jsum, 96);
  EXPECT_EQ(cost.jmax, 2);
}

TEST(KdTree, ConsecutiveRanksStayClose) {
  // Recursive halving assigns consecutive rank blocks to adjacent sub-grids;
  // with N=4 nodes on an 8x8 grid each node's cells form a 4x4 quadrant.
  const CartesianGrid g({8, 8});
  const NodeAllocation alloc = NodeAllocation::homogeneous(4, 16);
  const Stencil s = Stencil::nearest_neighbor(2);
  const KdTreeMapper mapper;
  const MappingCost cost = evaluate_mapping(g, s, mapper.remap(g, s, alloc), alloc);
  // Perfect quadrants: cut = 2 internal boundaries x 8 cells x 2 directions;
  // each quadrant has 4 + 4 outgoing edges.
  EXPECT_EQ(cost.jsum, 32);
  EXPECT_EQ(cost.jmax, 8);
}

TEST(KdTree, OneCellGrid) {
  const CartesianGrid g({1, 1});
  const NodeAllocation alloc = NodeAllocation::homogeneous(1, 1);
  const Stencil s = Stencil::nearest_neighbor(2);
  const KdTreeMapper mapper;
  EXPECT_EQ(mapper.new_coordinate(g, s, alloc, 0), (Coord{0, 0}));
}

TEST(KdTree, ThreeDimensionalValidity) {
  const CartesianGrid g({5, 4, 3});
  const NodeAllocation alloc = NodeAllocation::homogeneous(10, 6);
  const Stencil s = Stencil::nearest_neighbor(3);
  const KdTreeMapper mapper;
  const Remapping m = mapper.remap(g, s, alloc);
  EXPECT_EQ(m.size(), 60);
}

}  // namespace
}  // namespace gridmap
