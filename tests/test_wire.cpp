// GRIDMAP/1 wire-protocol conformance and fault-injection tests, driven
// entirely through the Transport interface — no real sockets. A scripted
// in-memory transport replays arbitrary byte sequences (torn frames,
// garbage, oversized lines, NULs, mid-race disconnects, half-open peers)
// through the exact serve_connection loop plan_server runs, proving the
// server always answers with an err frame or a valid response, never
// crashes, and never leaves a shard in a broken state.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/blocked.hpp"
#include "engine/plan_io.hpp"
#include "engine/wire.hpp"

namespace gridmap::engine::wire {
namespace {

/// Fake byte-stream: read_some() replays scripted chunks (an empty chunk is
/// one would-block return), then reports EOF — or, when `stop_when_drained`
/// is set, flips that flag and keeps returning would-block like a peer that
/// went half-open. write_all() records everything; writes from
/// `fail_writes_after` onward fail like a vanished peer, and write number
/// `truncate_write_at` lands only its first `truncate_write_bytes` bytes
/// before failing — a frame torn by a mid-write disconnect.
class ScriptedTransport final : public Transport {
 public:
  explicit ScriptedTransport(std::vector<std::string> reads) : reads_(std::move(reads)) {}

  long read_some(char* buffer, std::size_t max) override {
    if (chunk_ >= reads_.size()) {
      if (stop_when_drained != nullptr) {
        stop_when_drained->store(true);
        return -1;  // half-open: never EOF, the stop flag must end the loop
      }
      return 0;  // peer closed
    }
    const std::string& chunk = reads_[chunk_];
    if (chunk.empty()) {
      ++chunk_;
      return -1;  // scripted would-block/timeout
    }
    const std::size_t n = std::min(max, chunk.size() - offset_);
    std::memcpy(buffer, chunk.data() + offset_, n);
    offset_ += n;
    if (offset_ == chunk.size()) {
      ++chunk_;
      offset_ = 0;
    }
    return static_cast<long>(n);
  }

  bool write_all(std::string_view text) override {
    if (truncate_write_at >= 0 && writes_done_ == truncate_write_at) {
      ++writes_done_;
      written += text.substr(0, std::min(truncate_write_bytes, text.size()));
      return false;  // the tail of this frame never reached the peer
    }
    if (fail_writes_after >= 0 && writes_done_ >= fail_writes_after) {
      ++writes_done_;
      return false;
    }
    ++writes_done_;
    written += text;
    if (stop_after_write != nullptr && writes_done_ >= stop_after_write_count) {
      stop_after_write->store(true);  // e.g. SIGTERM lands mid-response
    }
    return true;
  }

  std::string written;
  int fail_writes_after = -1;                     ///< -1: writes never fail
  int truncate_write_at = -1;                     ///< write N tears mid-frame
  std::size_t truncate_write_bytes = 0;           ///< bytes landed before the tear
  std::atomic<bool>* stop_when_drained = nullptr; ///< half-open peer mode
  std::atomic<bool>* stop_after_write = nullptr;  ///< raise stop at write N
  int stop_after_write_count = 0;

 private:
  std::vector<std::string> reads_;
  std::size_t chunk_ = 0;
  std::size_t offset_ = 0;
  int writes_done_ = 0;
};

/// Splits `text` into 1-byte chunks — maximally torn framing.
std::vector<std::string> torn(const std::string& text) {
  std::vector<std::string> chunks;
  for (const char c : text) chunks.emplace_back(1, c);
  return chunks;
}

MapperRegistry tiny_registry() {
  MapperRegistry registry;
  registry.add("blocked", [] { return std::make_unique<BlockedMapper>(); });
  return registry;
}

/// Small sharded service for protocol tests: 1 backend, fast races.
std::unique_ptr<ShardedService> tiny_service(int shards = 2) {
  EngineOptions engine_options;
  engine_options.threads = 1;
  return std::make_unique<ShardedService>(tiny_registry(), engine_options,
                                          ServiceOptions{}, shards);
}

/// Deliberately slow cooperative mapper (test_service idiom): spins for
/// `spin` wall time while polling the ExecContext, then returns the
/// identity mapping — so its plan is a pure function of the grid, never of
/// the spin time.
class SlowMapper final : public Mapper {
 public:
  using Mapper::remap;

  explicit SlowMapper(std::chrono::milliseconds spin) : spin_(spin) {}

  std::string_view name() const noexcept override { return "Slow"; }

  Remapping remap(const CartesianGrid& grid, const Stencil& /*stencil*/,
                  const NodeAllocation& /*alloc*/, ExecContext& ctx) const override {
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < spin_) ctx.checkpoint();
    return Remapping::identity(grid);
  }

 private:
  std::chrono::milliseconds spin_;
};

/// blocked + a slow backend: every full race takes at least `spin`, while a
/// speculation pass (cheapest-first: blocked) returns in microseconds — so
/// a mapspec miss deterministically takes the provisional-then-revision
/// path instead of racing to a final answer before the handler looks.
MapperRegistry slow_registry(std::chrono::milliseconds spin) {
  MapperRegistry registry;
  registry.add("blocked", [] { return std::make_unique<BlockedMapper>(); });
  registry.add("slow", [spin] { return std::make_unique<SlowMapper>(spin); });
  return registry;
}

std::unique_ptr<ShardedService> slow_service(std::chrono::milliseconds spin,
                                             int shards = 1) {
  EngineOptions engine_options;
  engine_options.threads = 1;
  return std::make_unique<ShardedService>(slow_registry(spin), engine_options,
                                          ServiceOptions{}, shards);
}

/// Runs serve_connection over a scripted transport against `service`.
ConnectionEnd serve(ScriptedTransport& transport, ShardedService& service,
                    std::atomic<bool>* stop = nullptr,
                    const std::function<void()>& on_shutdown = nullptr) {
  std::atomic<bool> local_stop{false};
  return serve_connection(transport, service, stop != nullptr ? *stop : local_stop,
                          on_shutdown);
}

// ------------------------------------------------------------- line buffer --

TEST(WireLineBuffer, ReassemblesLinesTornAtEveryByte) {
  LineBuffer lines;
  const std::string text = "map 6x8 00 nn 6 8\nstats\n";
  std::vector<std::string> got;
  for (const char byte : text) {
    lines.feed(std::string_view(&byte, 1));
    std::string line;
    while (lines.next(line) == LineBuffer::Status::kLine) got.push_back(line);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "map 6x8 00 nn 6 8");
  EXPECT_EQ(got[1], "stats");
  EXPECT_EQ(lines.buffered(), 0u);
}

TEST(WireLineBuffer, SplitsMultipleLinesFromOneChunk) {
  LineBuffer lines;
  lines.feed("a\nbb\n\nccc\n");
  std::string line;
  ASSERT_EQ(lines.next(line), LineBuffer::Status::kLine);
  EXPECT_EQ(line, "a");
  ASSERT_EQ(lines.next(line), LineBuffer::Status::kLine);
  EXPECT_EQ(line, "bb");
  ASSERT_EQ(lines.next(line), LineBuffer::Status::kLine);
  EXPECT_EQ(line, "");  // blank line is a line; serve loop skips it
  ASSERT_EQ(lines.next(line), LineBuffer::Status::kLine);
  EXPECT_EQ(line, "ccc");
  EXPECT_EQ(lines.next(line), LineBuffer::Status::kNeedMore);
}

TEST(WireLineBuffer, OversizedLineTripsTooLongAndSticks) {
  LineBuffer lines(16);
  lines.feed(std::string(17, 'a'));  // no newline, already over the cap
  std::string line;
  EXPECT_EQ(lines.next(line), LineBuffer::Status::kTooLong);
  // The fault sticks and the buffer is discarded — memory stays bounded.
  EXPECT_EQ(lines.buffered(), 0u);
  lines.feed("short\n");
  EXPECT_EQ(lines.next(line), LineBuffer::Status::kTooLong);
}

TEST(WireLineBuffer, OversizedTerminatedLineAlsoTrips) {
  LineBuffer lines(8);
  lines.feed("123456789\n");  // newline present but line exceeds the cap
  std::string line;
  EXPECT_EQ(lines.next(line), LineBuffer::Status::kTooLong);
}

TEST(WireLineBuffer, LineExactlyAtCapStillParses) {
  LineBuffer lines(8);
  lines.feed("1234567\n");  // 7 bytes + '\n' == cap
  std::string line;
  ASSERT_EQ(lines.next(line), LineBuffer::Status::kLine);
  EXPECT_EQ(line, "1234567");
}

TEST(WireLineBuffer, EmbeddedNulTripsBadByteAndSticks) {
  LineBuffer lines;
  lines.feed(std::string_view("sta\0ts\n", 7));
  std::string line;
  EXPECT_EQ(lines.next(line), LineBuffer::Status::kBadByte);
  EXPECT_EQ(lines.buffered(), 0u);
  lines.feed("stats\n");
  EXPECT_EQ(lines.next(line), LineBuffer::Status::kBadByte);
}

TEST(WireLineBuffer, MemoryStaysBoundedUnderEndlessGarbage) {
  LineBuffer lines;
  for (int i = 0; i < 1024; ++i) {
    lines.feed(std::string(4096, 'x'));  // 4 MiB of newline-free garbage
    std::string line;
    (void)lines.next(line);
    EXPECT_LE(lines.buffered(), kMaxRequestLine + 4096);
  }
}

// ---------------------------------------------------------- request parsing --

TEST(WireParse, MapRequestParsesDimsPeriodicityStencilAndPriority) {
  std::istringstream args("16x12x8 010 hops 32 48 high");
  const MapRequest request = parse_map_request(args);
  EXPECT_EQ(request.instance.grid.dims(), (Dims{16, 12, 8}));
  EXPECT_FALSE(request.instance.grid.periodic(0));
  EXPECT_TRUE(request.instance.grid.periodic(1));
  EXPECT_EQ(request.instance.alloc.num_nodes(), 32);
  EXPECT_EQ(request.priority, Priority::kHigh);
}

TEST(WireParse, MapRequestDefaultsToNormalPriority) {
  std::istringstream args("6x8 00 nn 6 8");
  EXPECT_EQ(parse_map_request(args).priority, Priority::kNormal);
}

TEST(WireParse, MalformedMapRequestsThrowInvalidArgument) {
  const std::vector<std::string> bad = {
      "",                          // empty
      "6x8 00 nn 6",               // missing ppn
      "6x 00 nn 6 8",              // bad dims
      "x8 00 nn 6 8",              // bad dims
      "6x8 0 nn 6 8",              // periodic-bits length mismatch
      "6x8 02 nn 6 8",             // periodic-bits not 0/1
      "6x8 00 diag 6 8",           // unknown stencil
      "6x8 00 nn 0 8",             // non-positive nodes
      "6x8 00 nn 6 -1",            // negative ppn
      "6x8 00 nn 6 8 urgent",      // unknown priority
      "6x8 00 nn 6 8 high extra",  // trailing junk
      "6x9999999999 00 nn 6 8",    // dims digit-cap
  };
  for (const std::string& args_text : bad) {
    std::istringstream args(args_text);
    EXPECT_THROW((void)parse_map_request(args), std::invalid_argument)
        << "accepted: \"" << args_text << '"';
  }
}

// --------------------------------------------------------- request handling --

TEST(WireHandle, MapReturnsAPlanBitIdenticalToTheDirectEngine) {
  auto service = tiny_service(3);
  bool want_shutdown = false;
  const std::string response =
      handle_request(*service, "map 6x8 00 nn 6 8", want_shutdown);
  EXPECT_FALSE(want_shutdown);
  ASSERT_EQ(response.rfind("gridmap-plan", 0), 0u) << response;

  EngineOptions engine_options;
  engine_options.threads = 1;
  PortfolioEngine direct(tiny_registry(), engine_options);
  const CartesianGrid grid({6, 8});
  const auto plan =
      direct.map(grid, Stencil::nearest_neighbor(2), NodeAllocation::homogeneous(6, 8));
  EXPECT_EQ(response, serialize_plan(*plan));
  EXPECT_EQ(parse_plan(response), *plan);
}

TEST(WireHandle, StatsReportsAggregatedCountersWithShardCount) {
  auto service = tiny_service(4);
  bool want_shutdown = false;
  (void)handle_request(*service, "map 6x8 00 nn 6 8", want_shutdown);
  const std::string stats = handle_request(*service, "stats", want_shutdown);
  EXPECT_EQ(stats.rfind("ok shards=4 ", 0), 0u) << stats;
  EXPECT_NE(stats.find("submitted=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("completed=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("mapper_runs="), std::string::npos) << stats;
}

TEST(WireHandle, UnknownCommandAndBadRequestBecomeErrFramesNotExceptions) {
  auto service = tiny_service();
  bool want_shutdown = false;
  EXPECT_EQ(handle_request(*service, "frobnicate", want_shutdown)
                .rfind("err unknown-command", 0),
            0u);
  EXPECT_EQ(handle_request(*service, "map nonsense", want_shutdown)
                .rfind("err bad-request", 0),
            0u);
  EXPECT_EQ(handle_request(*service, "map 6x8 00 nn 6", want_shutdown)
                .rfind("err bad-request", 0),
            0u);
  EXPECT_FALSE(want_shutdown);
  // The service survived every malformed request and still serves.
  EXPECT_EQ(handle_request(*service, "map 4x4 00 nn 4 4", want_shutdown)
                .rfind("gridmap-plan", 0),
            0u);
}

TEST(WireHandle, ShutdownCommandSetsTheFlagAndAcksBye) {
  auto service = tiny_service();
  bool want_shutdown = false;
  EXPECT_EQ(handle_request(*service, "shutdown", want_shutdown), "ok bye\n");
  EXPECT_TRUE(want_shutdown);
}

// -------------------------------------------------- serve_connection: happy --

TEST(WireServe, FullSessionHelloRequestResponseEof) {
  auto service = tiny_service();
  ScriptedTransport transport({"map 6x8 00 nn 6 8\n"});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  // hello first, then the plan block.
  ASSERT_EQ(transport.written.rfind(hello_line(), 0), 0u);
  const std::string body = transport.written.substr(hello_line().size());
  EXPECT_EQ(body.rfind("gridmap-plan", 0), 0u);
  EXPECT_NE(body.find("\nend\n"), std::string::npos);
}

TEST(WireServe, TornFramesByteAtATimeStillServe) {
  auto service = tiny_service();
  ScriptedTransport transport(torn("map 6x8 00 nn 6 8\nstats\n"));
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  EXPECT_NE(transport.written.find("gridmap-plan"), std::string::npos);
  EXPECT_NE(transport.written.find("ok shards="), std::string::npos);
}

TEST(WireServe, WouldBlockTimeoutsBetweenBytesAreHarmless) {
  auto service = tiny_service();
  // Every byte separated by a scripted read timeout (empty chunk).
  std::vector<std::string> reads;
  for (const char c : std::string("stats\n")) {
    reads.emplace_back();  // would-block
    reads.emplace_back(1, c);
  }
  ScriptedTransport transport(std::move(reads));
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  EXPECT_NE(transport.written.find("ok shards="), std::string::npos);
}

TEST(WireServe, ShutdownCommandInvokesCallbackAndEndsConnection) {
  auto service = tiny_service();
  ScriptedTransport transport({"shutdown\n", "stats\n"});
  bool shutdown_requested = false;
  EXPECT_EQ(serve(transport, *service, nullptr,
                  [&shutdown_requested] { shutdown_requested = true; }),
            ConnectionEnd::kShutdown);
  EXPECT_TRUE(shutdown_requested);
  // The connection ended at the shutdown ack; the trailing stats line was
  // never served.
  EXPECT_NE(transport.written.find("ok bye"), std::string::npos);
  EXPECT_EQ(transport.written.find("ok shards="), std::string::npos);
}

// ------------------------------------------------- serve_connection: faults --

TEST(WireServe, GarbageBytesGetErrAndTheConnectionContinues) {
  auto service = tiny_service();
  ScriptedTransport transport({"\x01\x02garbage\x7f\n", "stats\n"});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  EXPECT_NE(transport.written.find("err unknown-command"), std::string::npos);
  // A garbage *line* is an application error, not a framing fault — the
  // next request on the same connection still works.
  EXPECT_NE(transport.written.find("ok shards="), std::string::npos);
}

TEST(WireServe, OversizedLineGetsErrTooLongAndCloses) {
  auto service = tiny_service();
  ScriptedTransport transport({std::string(kMaxRequestLine + 10, 'a'), "\nstats\n"});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kTooLong);
  EXPECT_NE(transport.written.find("err too-long"), std::string::npos);
  EXPECT_EQ(transport.written.find("ok shards="), std::string::npos);
}

TEST(WireServe, EmbeddedNulGetsErrBadByteAndCloses) {
  auto service = tiny_service();
  ScriptedTransport transport({std::string("sta\0ts\n", 7)});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kBadByte);
  EXPECT_NE(transport.written.find("err bad-byte"), std::string::npos);
}

TEST(WireServe, EofMidFrameEndsCleanlyWithoutAResponse) {
  auto service = tiny_service();
  ScriptedTransport transport({"map 6x8 00 n"});  // torn request, then EOF
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  EXPECT_EQ(transport.written, hello_line());  // hello only, no err, no crash
  // No request was admitted for the torn frame.
  EXPECT_EQ(service->counters().submitted, 0u);
}

TEST(WireServe, MidRaceDisconnectCompletesTheRaceAndLeavesShardsHealthy) {
  auto service = tiny_service();
  ScriptedTransport transport({"map 6x8 00 nn 6 8\n"});
  transport.fail_writes_after = 1;  // hello succeeds, the response write fails
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kPeerGone);

  // The race ran to completion inside its shard (the peer just never saw
  // the plan) and warmed the shard's cache.
  const ServiceCounters after = service->counters();
  EXPECT_EQ(after.completed, 1u);
  EXPECT_EQ(after.failed, 0u);
  EXPECT_EQ(after.in_flight, 0u);

  // A fresh connection is served normally — and the same signature now hits
  // the cache the doomed connection warmed.
  ScriptedTransport retry({"map 6x8 00 nn 6 8\n"});
  EXPECT_EQ(serve(retry, *service), ConnectionEnd::kEof);
  EXPECT_NE(retry.written.find("gridmap-plan"), std::string::npos);
  EXPECT_EQ(service->counters().cache_hits, 1u);
}

TEST(WireServe, HalfOpenPeerIsEndedByTheStopFlagNotALockup) {
  auto service = tiny_service();
  // The peer sends one request then goes silent without closing: reads keep
  // timing out. When the script drains, the transport raises the server's
  // stop flag — the loop must notice it and end with kStop, not spin or
  // block forever.
  std::atomic<bool> stop{false};
  ScriptedTransport transport({"stats\n"});
  transport.stop_when_drained = &stop;
  EXPECT_EQ(serve(transport, *service, &stop), ConnectionEnd::kStop);
  EXPECT_NE(transport.written.find("ok shards="), std::string::npos);
}

TEST(WireServe, StopAfterResponseDrainsInsteadOfServingForever) {
  auto service = tiny_service();
  std::atomic<bool> stop{false};
  // Both request lines arrive in one chunk; the server-wide stop flag is
  // raised while the first response is being written (SIGTERM mid-reply).
  ScriptedTransport transport({"stats\nstats\n"});
  transport.stop_after_write = &stop;
  transport.stop_after_write_count = 2;  // write 1 is the hello, 2 the response
  // The in-progress request is answered (graceful drain, not an abrupt
  // cut), but the second buffered line is never served.
  EXPECT_EQ(serve(transport, *service, &stop), ConnectionEnd::kStop);
  const std::size_t first = transport.written.find("ok shards=");
  EXPECT_NE(first, std::string::npos);
  EXPECT_EQ(transport.written.find("ok shards=", first + 1), std::string::npos);
}

TEST(WireServe, StopBeforeAnyRequestEndsTheConnectionImmediately) {
  auto service = tiny_service();
  std::atomic<bool> stop{true};  // shutdown already requested at accept time
  ScriptedTransport transport({"stats\n"});
  EXPECT_EQ(serve(transport, *service, &stop), ConnectionEnd::kStop);
  EXPECT_EQ(transport.written, hello_line());  // nothing was served
  EXPECT_EQ(service->counters().submitted, 0u);
}

// -------------------------------------------------------------- error frames --

TEST(WireFrames, ErrorFramesAreOneLineWithClosedCodeSet) {
  EXPECT_EQ(error_frame(ErrorCode::kTooLong, "way too big"),
            "err too-long way too big\n");
  EXPECT_EQ(error_frame(ErrorCode::kBusy, "queue-full"), "err busy queue-full\n");
  EXPECT_EQ(error_frame(ErrorCode::kInternal, ""), "err internal\n");
  // Newlines in details are flattened — a frame can never smuggle framing.
  EXPECT_EQ(error_frame(ErrorCode::kBadRequest, "multi\nline\rdetail"),
            "err bad-request multi line detail\n");
}

TEST(WireFrames, HelloAnnouncesTheProtocolVersion) {
  EXPECT_EQ(hello_line(), "GRIDMAP/1\n");
  EXPECT_EQ(kProtocol, "GRIDMAP/1");
}

// ------------------------------------------------------------- metrics verb --

TEST(WireMetrics, MetricsVerbReturnsAFramedPrometheusBlock) {
  auto service = tiny_service(2);
  bool want_shutdown = false;
  (void)handle_request(*service, "map 6x8 00 nn 6 8", want_shutdown);

  const std::string frame = handle_request(*service, "metrics", want_shutdown);
  // Frame golden format: versioned header line, exposition body, bare "end"
  // terminator — the same read-until-"\nend\n" block logic plan frames use.
  EXPECT_EQ(frame.rfind("gridmap-metrics v1\n", 0), 0u) << frame;
  ASSERT_GE(frame.size(), 4u);
  EXPECT_EQ(frame.substr(frame.size() - 5), "\nend\n");
  EXPECT_FALSE(want_shutdown);

  const std::string body =
      frame.substr(std::string("gridmap-metrics v1\n").size(),
                   frame.size() - std::string("gridmap-metrics v1\n").size() - 4);
  // The acceptance surface, socket-free: request quantiles by outcome,
  // queue-wait histogram, per-backend remap histogram, per-shard queue
  // depth, and the shard-count gauge.
  EXPECT_NE(body.find("# TYPE gridmap_request_seconds summary"), std::string::npos);
  EXPECT_NE(body.find("gridmap_request_seconds{outcome=\"race\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(body.find("gridmap_queue_wait_seconds_count"), std::string::npos);
  EXPECT_NE(body.find("gridmap_backend_remap_seconds{backend=\"blocked\""),
            std::string::npos);
  EXPECT_NE(body.find("gridmap_queue_depth{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(body.find("gridmap_queue_depth{shard=\"1\"}"), std::string::npos);
  EXPECT_NE(body.find("gridmap_shards 2"), std::string::npos);
  // No exposition line can collide with the frame terminator.
  EXPECT_EQ(body.find("\nend\n"), std::string::npos);
}

TEST(WireMetrics, MetricsBlockIsServedOverTheConnectionLoop) {
  auto service = tiny_service();
  ScriptedTransport transport({"map 6x8 00 nn 6 8\n", "metrics\n"});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  const std::size_t header = transport.written.find("gridmap-metrics v1\n");
  ASSERT_NE(header, std::string::npos);
  EXPECT_NE(transport.written.find("gridmap_service_requests_total", header),
            std::string::npos);
  EXPECT_EQ(transport.written.substr(transport.written.size() - 5), "\nend\n");
}

// ------------------------------------------ two-tier speculative mapspec (PR 10) --

TEST(WireSpec, MapspecMissPushesProvisionalThenFinalRevision) {
  using std::chrono::milliseconds;
  auto service = slow_service(milliseconds(200));
  ScriptedTransport transport({"mapspec 6x8 00 nn 6 8\n"});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);

  ASSERT_EQ(transport.written.rfind(hello_line(), 0), 0u);
  const std::string body = transport.written.substr(hello_line().size());
  // Immediate answer: a plan block whose header carries the provisional flag.
  ASSERT_EQ(body.rfind(std::string(kProvisionalHeader) + "\n", 0), 0u) << body;
  const std::size_t marker = body.find("end\nrevision\n");
  ASSERT_NE(marker, std::string::npos) << body;
  std::string provisional = body.substr(0, marker + 4);
  const std::string final_frame = body.substr(marker + 4 + std::string("revision\n").size());

  // Stripping the flag word recovers a frame parse_plan accepts.
  provisional.erase(provisional.find(" provisional"), std::string(" provisional").size());
  const MappingPlan early = parse_plan(provisional);
  EXPECT_EQ(early.mapper, "blocked");  // cold history: cheapest-first speculation

  // Determinism pin: the pushed final is bit-identical to a direct engine
  // race over the same registry and options. (SlowMapper's plan does not
  // depend on its spin time, so a 1 ms twin registry keeps the test fast.)
  EngineOptions engine_options;
  engine_options.threads = 1;
  PortfolioEngine direct(slow_registry(milliseconds(1)), engine_options);
  const auto direct_plan = direct.map(CartesianGrid({6, 8}), Stencil::nearest_neighbor(2),
                                      NodeAllocation::homogeneous(6, 8));
  EXPECT_EQ(final_frame, serialize_plan(*direct_plan));
  EXPECT_EQ(parse_plan(final_frame), *direct_plan);

  const ServiceCounters c = service->counters();
  EXPECT_EQ(c.speculated, 1u);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.failed, 0u);
}

TEST(WireSpec, MapspecOnAWarmCacheAnswersWithOneFinalFrame) {
  auto service = tiny_service();
  bool want_shutdown = false;
  const std::string warm = handle_request(*service, "map 6x8 00 nn 6 8", want_shutdown);
  const std::string response =
      handle_request(*service, "mapspec 6x8 00 nn 6 8", want_shutdown);
  EXPECT_EQ(response, warm);  // one plain block, bit-identical to the map frame
  EXPECT_EQ(response.find("provisional"), std::string::npos);
  EXPECT_EQ(response.find("revision"), std::string::npos);
  EXPECT_EQ(service->counters().cache_hits, 1u);
}

TEST(WireSpec, PeerVanishingBeforeTheRevisionOnlyLosesTheWrite) {
  using std::chrono::milliseconds;
  auto service = slow_service(milliseconds(200));
  ScriptedTransport transport({"mapspec 6x8 00 nn 6 8\n"});
  transport.fail_writes_after = 2;  // hello + provisional land, the revision fails
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kPeerGone);
  EXPECT_NE(transport.written.find(std::string(kProvisionalHeader) + "\n"),
            std::string::npos);
  EXPECT_EQ(transport.written.find("revision"), std::string::npos);

  // The background race still completed inside the service (the doomed peer
  // only lost the push) and warmed the cache: a fresh connection's mapspec
  // for the same instance is answered with one plain final frame.
  const ServiceCounters after = service->counters();
  EXPECT_EQ(after.completed, 1u);
  EXPECT_EQ(after.failed, 0u);
  ScriptedTransport retry({"mapspec 6x8 00 nn 6 8\n"});
  EXPECT_EQ(serve(retry, *service), ConnectionEnd::kEof);
  const std::string body = retry.written.substr(hello_line().size());
  EXPECT_EQ(body.rfind("gridmap-plan v1\n", 0), 0u) << body;
  EXPECT_EQ(body.find("provisional"), std::string::npos);
  EXPECT_EQ(service->counters().cache_hits, 1u);
}

TEST(WireSpec, TornRevisionWriteEndsTheConnectionNotTheShard) {
  using std::chrono::milliseconds;
  auto service = slow_service(milliseconds(200));
  ScriptedTransport transport({"mapspec 6x8 00 nn 6 8\n"});
  transport.truncate_write_at = 2;      // the revision push (hello=0, provisional=1)...
  transport.truncate_write_bytes = 12;  // ...tears mid-frame: "revision\ngri"
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kPeerGone);
  // Exactly the torn prefix went out after the provisional block's "end".
  const std::size_t end = transport.written.find("end\n");
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(transport.written.substr(end + 4), "revision\ngri");

  // The shard stayed healthy: a new connection races a fresh instance fine.
  ScriptedTransport next({"map 4x4 00 nn 4 4\n"});
  EXPECT_EQ(serve(next, *service), ConnectionEnd::kEof);
  EXPECT_NE(next.written.find("gridmap-plan"), std::string::npos);
  EXPECT_EQ(service->counters().failed, 0u);
}

// ----------------------------------------------- mixed-version interop (PR 6) --

TEST(WireInterop, PrePr6ClientSessionsStillInteroperate) {
  // Conformance pin: a client built before the `metrics` verb existed
  // speaks exactly hello + map/stats/shutdown. Nothing in those frames may
  // change — same hello, same plan block, same stats line shape, same ack.
  auto service = tiny_service();
  ScriptedTransport transport(
      {"map 6x8 00 nn 6 8\n", "stats\n", "shutdown\n"});
  bool shutdown_seen = false;
  EXPECT_EQ(serve(transport, *service, nullptr, [&shutdown_seen] { shutdown_seen = true; }),
            ConnectionEnd::kShutdown);
  EXPECT_TRUE(shutdown_seen);
  ASSERT_EQ(transport.written.rfind(hello_line(), 0), 0u);
  const std::string body = transport.written.substr(hello_line().size());
  EXPECT_EQ(body.rfind("gridmap-plan", 0), 0u);
  EXPECT_NE(body.find("\nok shards=2 "), std::string::npos);
  EXPECT_NE(body.find("\nok bye\n"), std::string::npos);
}

TEST(WireInterop, UnknownFutureVerbKeepsTheConnectionOpen) {
  // The kUnknownCommand contract (wire.hpp / FORMATS.md err table): the
  // command set may grow within GRIDMAP/1, so an old server answers a
  // future verb with err unknown-command and KEEPS SERVING — a new client
  // against an old server degrades gracefully instead of disconnecting.
  auto service = tiny_service();
  ScriptedTransport transport({"flux_capacitance\n", "map 4x4 00 nn 4 4\n"});
  EXPECT_EQ(serve(transport, *service), ConnectionEnd::kEof);
  const std::size_t err = transport.written.find("err unknown-command");
  ASSERT_NE(err, std::string::npos);
  // The detail names the supported verbs (now including mapspec), and the
  // next request on the same connection is still served.
  EXPECT_NE(transport.written.find("want map|mapspec|stats|metrics|shutdown"),
            std::string::npos);
  EXPECT_NE(transport.written.find("gridmap-plan", err), std::string::npos);
}

TEST(WireInterop, PrePr10MapOnlySessionIsUnaffectedBySpeculativeTraffic) {
  // Verb-growth contract for PR 10: a client that never sends mapspec sees
  // exactly the frames it always saw — plain plan blocks, no provisional
  // flag, no unsolicited revision push — even when another connection used
  // the two-tier path against the same service and warmed its caches.
  auto service = slow_service(std::chrono::milliseconds(50));
  ScriptedTransport spec({"mapspec 6x8 00 nn 6 8\n"});
  EXPECT_EQ(serve(spec, *service), ConnectionEnd::kEof);

  ScriptedTransport old({"map 6x8 00 nn 6 8\n", "map 5x4 00 nn 5 4\n"});
  EXPECT_EQ(serve(old, *service), ConnectionEnd::kEof);
  const std::string body = old.written.substr(hello_line().size());
  EXPECT_EQ(body.rfind("gridmap-plan v1\n", 0), 0u) << body;  // hit: a plain frame
  EXPECT_EQ(body.find("provisional"), std::string::npos);
  EXPECT_EQ(body.find("revision"), std::string::npos);
}

}  // namespace
}  // namespace gridmap::engine::wire
