#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "graph/cartesian_graph.hpp"
#include "graph/csr_graph.hpp"

namespace gridmap {
namespace {

TEST(CsrGraph, BuildsTriangle) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_arcs(), 6);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(CsrGraph, MergesParallelEdges) {
  const CsrGraph g = CsrGraph::from_edges(2, {{0, 1, 1}, {1, 0, 1}, {0, 1, 3}});
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.edge_weights(0)[0], 5);
}

TEST(CsrGraph, RejectsSelfLoopsAndBadEndpoints) {
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 0, 1}}), std::invalid_argument);
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 2, 1}}), std::invalid_argument);
  EXPECT_THROW(CsrGraph::from_edges(2, {{0, 1, 0}}), std::invalid_argument);
}

TEST(CsrGraph, VertexWeightsDefaultToOne) {
  const CsrGraph g = CsrGraph::from_edges(3, {{0, 1, 1}});
  EXPECT_EQ(g.vertex_weight(2), 1);
  EXPECT_EQ(g.total_vertex_weight(), 3);
}

TEST(CsrGraph, CutCountsWeights) {
  const CsrGraph g = CsrGraph::from_edges(4, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {3, 0, 5}});
  EXPECT_EQ(g.cut({0, 0, 1, 1}), 3 + 5);
  EXPECT_EQ(g.cut({0, 0, 0, 0}), 0);
  EXPECT_EQ(g.cut({0, 1, 0, 1}), 2 + 3 + 4 + 5);
}

TEST(CartesianGraph, EdgeWeightsAreDirectedCounts) {
  // Symmetric stencils put weight 2 (both directions) on each adjacency.
  const CartesianGrid grid({3, 3});
  const CsrGraph g = build_cartesian_graph(grid, Stencil::nearest_neighbor(2));
  EXPECT_EQ(g.num_vertices(), 9);
  for (int v = 0; v < 9; ++v) {
    for (const std::int64_t w : g.edge_weights(v)) EXPECT_EQ(w, 2);
  }
  // Total arcs weight = directed edge count.
  std::int64_t total = 0;
  for (int v = 0; v < 9; ++v) {
    for (const std::int64_t w : g.edge_weights(v)) total += w;
  }
  EXPECT_EQ(total / 2, grid.count_directed_edges(Stencil::nearest_neighbor(2)));
}

TEST(CartesianGraph, CutEqualsJsum) {
  const CartesianGrid grid({6, 4});
  const Stencil s = Stencil::nearest_neighbor_with_hops(2);
  const CsrGraph g = build_cartesian_graph(grid, s);
  // Row-blocked partition of 4 nodes x 6 cells.
  std::vector<int> part(24);
  for (int c = 0; c < 24; ++c) part[static_cast<std::size_t>(c)] = c / 6;
  const NodeAllocation alloc = NodeAllocation::homogeneous(4, 6);
  std::vector<NodeId> node_of_cell(part.begin(), part.end());
  const MappingCost cost = evaluate_mapping(grid, s, node_of_cell, 4);
  EXPECT_EQ(g.cut(part), cost.jsum);
}

TEST(CartesianGraph, PeriodicWrapEdgesPresent) {
  const CartesianGrid grid({4, 4}, {true, true});
  const CsrGraph g = build_cartesian_graph(grid, Stencil::nearest_neighbor(2));
  for (int v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
}

}  // namespace
}  // namespace gridmap
