#include <gtest/gtest.h>

#include "vmpi/cart_stencil_comm.hpp"

namespace gridmap {
namespace {

using vmpi::CartStencilComm;
using vmpi::Universe;

Universe make_universe(int nodes, int ppn) {
  return Universe(NodeAllocation::homogeneous(nodes, ppn), vsc4());
}

TEST(Vmpi, UniverseClockAdvances) {
  Universe u = make_universe(2, 4);
  EXPECT_DOUBLE_EQ(u.clock(), 0.0);
  u.advance(1.5);
  EXPECT_DOUBLE_EQ(u.clock(), 1.5);
  u.barrier();
  EXPECT_GT(u.clock(), 1.5);
  EXPECT_THROW(u.advance(-1.0), std::invalid_argument);
}

TEST(Vmpi, CommWithoutReorderIsBlocked) {
  Universe u = make_universe(2, 4);
  const CartStencilComm comm(u, {2, 4}, {false, false}, /*reorder=*/false,
                             Stencil::nearest_neighbor(2));
  for (Rank r = 0; r < comm.size(); ++r) {
    EXPECT_EQ(comm.coordinates(r), comm.grid().coord_of(r));
  }
}

TEST(Vmpi, ReorderImprovesCost) {
  Universe u = make_universe(10, 10);
  const CartStencilComm blocked(u, {10, 10}, {false, false}, false,
                                Stencil::nearest_neighbor(2));
  const CartStencilComm reordered(u, {10, 10}, {false, false}, true,
                                  Stencil::nearest_neighbor(2), Algorithm::kHyperplane);
  EXPECT_LT(reordered.cost().jsum, blocked.cost().jsum);
}

TEST(Vmpi, FromFlatMatchesTypedConstruction) {
  Universe u = make_universe(2, 4);
  const Stencil s = Stencil::nearest_neighbor(2);
  const std::vector<int> flat = s.flat();
  const std::vector<int> dims = {4, 2};
  const std::vector<int> periods = {0, 1};
  const CartStencilComm a = CartStencilComm::from_flat(u, 2, dims, periods, false, flat);
  const CartStencilComm b(u, {4, 2}, {false, true}, false, s);
  EXPECT_EQ(a.grid(), b.grid());
  EXPECT_EQ(a.stencil(), b.stencil());
}

TEST(Vmpi, NeighborResolution) {
  Universe u = make_universe(2, 4);
  // Stencil order: +1_0, -1_0, +1_1, -1_1 on a 2x4 grid, blocked mapping.
  const CartStencilComm comm(u, {2, 4}, {false, false}, false,
                             Stencil::nearest_neighbor(2));
  EXPECT_EQ(comm.neighbor(0, 0), std::optional<Rank>(4));  // (0,0)+ (1,0) -> rank 4
  EXPECT_FALSE(comm.neighbor(0, 1).has_value());           // off the top
  EXPECT_EQ(comm.neighbor(0, 2), std::optional<Rank>(1));
  EXPECT_FALSE(comm.neighbor(0, 3).has_value());           // off the left
}

TEST(Vmpi, NeighborAlltoallMovesDataCorrectly) {
  Universe u = make_universe(2, 4);
  const CartStencilComm comm(u, {2, 4}, {false, false}, false,
                             Stencil::nearest_neighbor(2));
  const std::size_t count = 2;
  const std::size_t k = 4;
  std::vector<std::vector<double>> send(8, std::vector<double>(k * count));
  std::vector<std::vector<double>> recv(8, std::vector<double>(k * count, -1.0));
  // Rank r sends value 100*r + offset_index into each block.
  for (Rank r = 0; r < 8; ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      send[static_cast<std::size_t>(r)][i * count] = 100.0 * r + static_cast<double>(i);
      send[static_cast<std::size_t>(r)][i * count + 1] = 0.5;
    }
  }
  const double seconds = comm.neighbor_alltoall(send, recv, count);
  EXPECT_GT(seconds, 0.0);
  EXPECT_DOUBLE_EQ(u.clock(), seconds);

  // Rank 0's block for offset +1_0 (index 0) was sent to rank 4 and must
  // appear in rank 4's block for -1_0 (index 1).
  EXPECT_DOUBLE_EQ(recv[4][1 * count], 0.0 * 100 + 0.0);
  EXPECT_DOUBLE_EQ(recv[4][1 * count + 1], 0.5);
  // Rank 5's block for -1_1 (index 3) lands at rank 4's +1_1 block (index 2).
  EXPECT_DOUBLE_EQ(recv[4][2 * count], 100.0 * 5 + 3.0);
  // Missing neighbors leave the buffer untouched.
  EXPECT_DOUBLE_EQ(recv[0][1 * count], -1.0);  // rank 0 has no -1_0 neighbor
}

TEST(Vmpi, NeighborAlltoallChecksBufferSizes) {
  Universe u = make_universe(2, 4);
  const CartStencilComm comm(u, {2, 4}, {false, false}, false,
                             Stencil::nearest_neighbor(2));
  std::vector<std::vector<double>> send(8, std::vector<double>(2));
  std::vector<std::vector<double>> recv(8, std::vector<double>(8));
  EXPECT_THROW(comm.neighbor_alltoall(send, recv, 2), std::invalid_argument);
}

TEST(Vmpi, NeighborAlltoallRejectsAsymmetricStencil) {
  Universe u = make_universe(2, 4);
  const CartStencilComm comm(u, {2, 4}, {false, false}, false,
                             Stencil::from_offsets({{0, 1}}));
  std::vector<std::vector<double>> send(8, std::vector<double>(4));
  std::vector<std::vector<double>> recv(8, std::vector<double>(4));
  EXPECT_THROW(comm.neighbor_alltoall(send, recv, 4), std::invalid_argument);
}

TEST(Vmpi, PeriodicNeighborsWrap) {
  Universe u = make_universe(2, 4);
  const CartStencilComm comm(u, {2, 4}, {true, true}, false,
                             Stencil::nearest_neighbor(2));
  // Rank 0 at (0,0): -1_0 wraps to (1,0) = rank 4; -1_1 wraps to (0,3).
  EXPECT_EQ(comm.neighbor(0, 1), std::optional<Rank>(4));
  EXPECT_EQ(comm.neighbor(0, 3), std::optional<Rank>(3));
}

TEST(Vmpi, ExchangeTimeFasterWithReordering) {
  Universe u1 = make_universe(10, 10);
  Universe u2 = make_universe(10, 10);
  const Stencil s = Stencil::nearest_neighbor(2);
  const CartStencilComm blocked(u1, {10, 10}, {false, false}, false, s);
  const CartStencilComm reordered(u2, {10, 10}, {false, false}, true, s,
                                  Algorithm::kStencilStrips);
  const std::size_t count = 8192;
  std::vector<std::vector<double>> send(100, std::vector<double>(4 * count, 1.0));
  std::vector<std::vector<double>> recv(100, std::vector<double>(4 * count));
  const double tb = blocked.neighbor_alltoall(send, recv, count);
  const double tr = reordered.neighbor_alltoall(send, recv, count);
  EXPECT_LT(tr, tb);
}

}  // namespace
}  // namespace gridmap
