#include <gtest/gtest.h>

#include <numeric>

#include "npc/reduction.hpp"
#include "npc/three_partition.hpp"

namespace gridmap {
namespace {

TEST(ThreePartition, PaperExampleIsSolvable) {
  // Figure 3 of the paper: I' = {6, 3, 3, 2, 2, 2}, subsets of sum 6.
  const std::vector<std::int64_t> items = {6, 3, 3, 2, 2, 2};
  const ThreePartitionSolution sol = solve_three_partition(items);
  ASSERT_TRUE(sol.solvable);
  std::array<std::int64_t, 3> sums = {0, 0, 0};
  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_GE(sol.group[i], 0);
    ASSERT_LT(sol.group[i], 3);
    sums[static_cast<std::size_t>(sol.group[i])] += items[i];
  }
  EXPECT_EQ(sums[0], 6);
  EXPECT_EQ(sums[1], 6);
  EXPECT_EQ(sums[2], 6);
}

TEST(ThreePartition, SumNotDivisibleByThree) {
  EXPECT_FALSE(solve_three_partition({3, 3, 2}).solvable);
}

TEST(ThreePartition, OversizedItemMakesItUnsolvable) {
  // Sum = 9, target 3, but the 5 cannot fit into any subset.
  EXPECT_FALSE(solve_three_partition({5, 1, 1, 1, 1}).solvable);
}

TEST(ThreePartition, TriviallySolvable) {
  const ThreePartitionSolution sol = solve_three_partition({4, 4, 4});
  ASSERT_TRUE(sol.solvable);
  EXPECT_NE(sol.group[0], sol.group[1]);
  EXPECT_NE(sol.group[1], sol.group[2]);
  EXPECT_NE(sol.group[0], sol.group[2]);
}

TEST(ThreePartition, RejectsBadInput) {
  EXPECT_THROW(solve_three_partition({}), std::invalid_argument);
  EXPECT_THROW(solve_three_partition({3, -3, 3}), std::invalid_argument);
}

TEST(Reduction, BuildsPaperInstance) {
  const std::vector<std::int64_t> items = {6, 3, 3, 2, 2, 2};
  const GridPartitionInstance inst = reduce_three_partition(items);
  EXPECT_EQ(inst.dims, (Dims{3, 6}));
  EXPECT_EQ(inst.budget, 2 * 6 - 6);
  EXPECT_EQ(inst.stencil.k(), 2);
  EXPECT_EQ(static_cast<std::int64_t>(inst.capacities.size()), 6);
  EXPECT_EQ(std::accumulate(inst.capacities.begin(), inst.capacities.end(), 0), 18);
}

TEST(Reduction, YesCertificateAchievesBudget) {
  const std::vector<std::int64_t> items = {6, 3, 3, 2, 2, 2};
  const GridPartitionInstance inst = reduce_three_partition(items);
  const ThreePartitionSolution sol = solve_three_partition(items);
  ASSERT_TRUE(sol.solvable);
  const std::vector<NodeId> mapping = mapping_from_three_partition(inst, items, sol);
  EXPECT_EQ(grid_partition_cost(inst, mapping), inst.budget);
}

TEST(Reduction, ForwardDirectionOnTinyInstances) {
  // Solvable tiny instance: brute force confirms Jsum <= Q is reachable.
  const std::vector<std::int64_t> yes_items = {2, 2, 2, 1, 1, 1};  // sum 9, target 3
  const GridPartitionInstance yes_inst = reduce_three_partition(yes_items);
  ASSERT_TRUE(solve_three_partition(yes_items).solvable);
  EXPECT_TRUE(grid_partition_decision(yes_inst));
}

TEST(Reduction, BackwardDirectionOnTinyInstances) {
  // Unsolvable instance: no mapping reaches the budget.
  const std::vector<std::int64_t> no_items = {5, 1, 1, 1, 1};  // sum 9, 5 doesn't fit
  ASSERT_FALSE(solve_three_partition(no_items).solvable);
  const GridPartitionInstance no_inst = reduce_three_partition(no_items);
  EXPECT_FALSE(grid_partition_decision(no_inst));
}

TEST(Reduction, RejectsIndivisibleSum) {
  EXPECT_THROW(reduce_three_partition({3, 3, 2}), std::invalid_argument);
  EXPECT_THROW(reduce_three_partition({3, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace gridmap
